package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/remotestore"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/trace"
)

// runServe is the `topobench serve` subcommand: the scenario engine as a
// long-running HTTP service (see internal/service for the API). With
// -cache-dir, results persist across restarts — a warm daemon answers
// previously-solved grids from disk without solving anything. With -peer,
// the replica joins a fleet: misses consult the peer's result store
// (retries/backoff/circuit breaker, see internal/remotestore), hits are
// promoted to local disk, and solves are published back — so a grid
// solved anywhere is solved everywhere. -claim-lease additionally
// coordinates cold solves through crash-safe claim leases on a shared
// -cache-dir, so replicas sharing a pool solve each point once
// fleet-wide.
func runServe(args []string) {
	fs := flag.NewFlagSet("topobench serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		cacheDir   = fs.String("cache-dir", "", "persistent result-store directory (empty: memory-only)")
		workers    = fs.Int("workers", 0, "bound on total in-flight evaluation work (0 = GOMAXPROCS)")
		jobs       = fs.Int("jobs", 0, "max eval requests in flight before 429 backpressure (0 = 2*GOMAXPROCS)")
		maxBytes   = fs.Int64("store-max-bytes", 0, "LRU-prune the store to this byte budget after each eval (0 = unbounded)")
		peer       = fs.String("peer", "", "peer replica base URL to share results with (e.g. http://10.0.0.2:8080)")
		faultSpec  = fs.String("fault-inject", "", "inject faults into peer traffic, e.g. \"seed=7,error=0.2,corrupt=0.05\" (testing)")
		lease      = fs.Duration("claim-lease", 0, "claim-lease TTL for fleet-wide solve dedup on a shared -cache-dir (0 = off)")
		reqTimeout = fs.Duration("request-timeout", 0, "per-evaluation wall-clock bound; expiry answers 504 (0 = unbounded)")
		jobTimeout = fs.Duration("job-timeout", 0, "per-async-job evaluation wall-clock bound (0 = unbounded)")
		jobRetain  = fs.Duration("job-retain", 24*time.Hour, "how long finished async-job records are kept before the startup sweep discards them")
		jobQueue   = fs.Int("job-queue", 0, "max async jobs resident before submissions get 429 (0 = 16*jobs)")
		respBytes  = fs.Int64("resp-cache-bytes", 0, "response-byte cache budget (0 = 64 MiB default, negative = disabled)")
		pprofOn    = fs.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ (off by default)")
		warmStart  = fs.Bool("warm-start", false, "seed delta-shaped points (failure ladders, expansion steps) from their parent's stored witness; every warm solve is flowcheck-certified")
		sample     = fs.Float64("trace-sample", 0.001, "fraction of requests traced end to end into /debug/traces (0 disables head sampling; slow capture still applies)")
		traceSlow  = fs.Duration("trace-slow", 250*time.Millisecond, "requests at or over this duration are always captured and logged (0 disables)")
		traceBuf   = fs.Int("trace-buffer", 0, "completed traces retained in the /debug/traces ring (0 = 256)")
		logFormat  = logFormatFlag(fs)
	)
	fs.Parse(args)
	applyLogFormat(*logFormat)

	if err := validateServeFlags(*cacheDir, *lease); err != nil {
		fatal(err)
	}
	runner.SetMaxInFlight(*workers)
	cache := scenario.NewCache()
	var st *store.Store
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		// Fleet peers probe GET /v1/result for addresses that mostly don't
		// exist locally; the negative cache absorbs those repeated misses
		// without touching the filesystem each time (defaults: 4096 entries,
		// 250ms TTL, invalidated by writes).
		st.EnableNegativeCache(0, 0)
		cache.SetBackend(st)
	}
	var remote *remotestore.Client
	if *peer != "" {
		ropt := remotestore.Options{BaseURL: *peer}
		if *faultSpec != "" {
			fcfg, err := faultinject.ParseSpec(*faultSpec)
			if err != nil {
				fatal(err)
			}
			ropt.Transport = faultinject.NewTransport(nil, fcfg)
			logger.Warn("FAULT INJECTION active on peer traffic", "spec", *faultSpec)
		}
		remote = remotestore.New(ropt)
	}
	var tiered *store.Tiered
	switch {
	case st != nil && (remote != nil || *lease > 0):
		// Tiered backend: disk, then peer (with write-back promotion), with
		// optional claim-lease solve dedup across replicas sharing the dir.
		var rb store.Backend
		if remote != nil {
			rb = remote
		}
		tiered = store.NewTiered(st, rb, store.TieredOptions{LeaseTTL: *lease})
		cache.SetBackend(tiered)
	case remote != nil:
		// No local disk: the peer is the only durable tier.
		cache.SetBackend(remote)
	}
	eng := &scenario.Engine{Parallel: *workers, Cache: cache, SkipInfeasible: true, WarmStart: *warmStart}
	var tracer *trace.Tracer
	if *sample > 0 || *traceSlow > 0 {
		tracer = trace.New(trace.Options{Sample: *sample, Slow: *traceSlow, Buffer: *traceBuf})
	}
	svc := service.New(service.Config{
		Engine: eng, Cache: cache, Store: st,
		MaxJobs: *jobs, StoreMaxBytes: *maxBytes,
		Remote: remote, Tiered: tiered,
		RequestTimeout:    *reqTimeout,
		JobTimeout:        *jobTimeout,
		JobRetain:         *jobRetain,
		MaxQueuedJobs:     *jobQueue,
		RespCacheMaxBytes: *respBytes,
		Tracer:            tracer,
		Logger:            logger,
	})
	if n := svc.RecoverJobs(); n > 0 {
		logger.Info("recovered async jobs", "jobs", n, "dir", *cacheDir)
	}
	handler := svc.Handler()
	if *pprofOn {
		// pprof rides a wrapper mux so the profiling handlers stay entirely
		// out of the service's routing (and its dataplane) unless asked for.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		logger.Info("pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain in-flight
	// requests (bounded), then report what the process served.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			srv.Close()
		}
	}()

	if st != nil {
		ss := st.Stats()
		logger.Info("store opened", "dir", *cacheDir, "entries", ss.Entries, "bytes", ss.Bytes)
	}
	if tracer != nil {
		logger.Info("tracing enabled", "sample", *sample, "slow", *traceSlow)
	}
	logger.Info("listening", "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-drained
	printCacheStats(cache, st)
	if tiered != nil {
		ts := tiered.Stats()
		logger.Info("tiered stats",
			"disk_hits", ts.DiskHits, "remote_hits", ts.RemoteHits, "misses", ts.Misses,
			"promotions", ts.Promotions, "claims_won", ts.ClaimsWon,
			"wait_hits", ts.WaitHits, "reclaims", ts.Reclaims)
	}
	if remote != nil {
		rs := remote.Stats()
		logger.Info("remote stats", "peer", remote.BaseURL(),
			"load_hits", rs.LoadHits, "loads", rs.Loads, "saves", rs.Saves,
			"save_errors", rs.SaveErrs, "retries", rs.Retries, "failures", rs.Failures,
			"breaker_opens", rs.BreakerOpens, "breaker", rs.State.String())
	}
}

// validateServeFlags rejects flag combinations that would silently
// disable what the operator asked for. -claim-lease coordinates solves
// through lease files under -cache-dir; without a cache dir there is
// nowhere to put them, and ignoring the flag (the old behavior) left
// fleets believing they had solve dedup when every replica solved alone.
func validateServeFlags(cacheDir string, lease time.Duration) error {
	if lease > 0 && cacheDir == "" {
		return fmt.Errorf("-claim-lease requires -cache-dir: claim leases live in the result-store directory")
	}
	return nil
}

// printCacheStats reports the tiered cache and store activity — the
// batch-mode exit summary and the server's shutdown summary.
func printCacheStats(c *scenario.Cache, st *store.Store) {
	cs := c.Stats()
	args := []any{
		"hits", cs.Hits, "store_hits", cs.StoreHits,
		"misses", cs.Misses, "entries", cs.Entries,
	}
	if cs.StoreErrs > 0 {
		args = append(args, "STORE_ERRORS", cs.StoreErrs)
	}
	logger.Info("cache stats", args...)
	if st != nil {
		ss := st.Stats()
		logger.Info("store stats",
			"entries", ss.Entries, "bytes", ss.Bytes, "hits", ss.Hits,
			"misses", ss.Misses, "writes", ss.Writes,
			"corrupt", ss.Corrupt, "evicted", ss.Evicted)
	}
}
