package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/store"
)

// runServe is the `topobench serve` subcommand: the scenario engine as a
// long-running HTTP service (see internal/service for the API). With
// -cache-dir, results persist across restarts — a warm daemon answers
// previously-solved grids from disk without solving anything.
func runServe(args []string) {
	fs := flag.NewFlagSet("topobench serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		cacheDir = fs.String("cache-dir", "", "persistent result-store directory (empty: memory-only)")
		workers  = fs.Int("workers", 0, "bound on total in-flight evaluation work (0 = GOMAXPROCS)")
		jobs     = fs.Int("jobs", 0, "max eval requests in flight before 429 backpressure (0 = 2*GOMAXPROCS)")
		maxBytes = fs.Int64("store-max-bytes", 0, "LRU-prune the store to this byte budget after each eval (0 = unbounded)")
	)
	fs.Parse(args)

	runner.SetMaxInFlight(*workers)
	cache := scenario.NewCache()
	var st *store.Store
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cache.SetBackend(st)
	}
	eng := &scenario.Engine{Parallel: *workers, Cache: cache, SkipInfeasible: true}
	svc := service.New(service.Config{
		Engine: eng, Cache: cache, Store: st,
		MaxJobs: *jobs, StoreMaxBytes: *maxBytes,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain in-flight
	// requests (bounded), then report what the process served.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			srv.Close()
		}
	}()

	if st != nil {
		ss := st.Stats()
		fmt.Fprintf(os.Stderr, "topobench serve: store %s holds %d entries (%d bytes)\n",
			*cacheDir, ss.Entries, ss.Bytes)
	}
	fmt.Fprintf(os.Stderr, "topobench serve: listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-drained
	printCacheStats(cache, st)
}

// printCacheStats reports the tiered cache and store activity — the
// batch-mode exit summary and the server's shutdown summary.
func printCacheStats(c *scenario.Cache, st *store.Store) {
	cs := c.Stats()
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d store hits, %d misses, %d entries",
		cs.Hits, cs.StoreHits, cs.Misses, cs.Entries)
	if cs.StoreErrs > 0 {
		fmt.Fprintf(os.Stderr, ", %d STORE ERRORS", cs.StoreErrs)
	}
	fmt.Fprintln(os.Stderr)
	if st != nil {
		ss := st.Stats()
		fmt.Fprintf(os.Stderr, "store: %d entries, %d bytes (%d hits, %d misses, %d writes, %d corrupt, %d evicted)\n",
			ss.Entries, ss.Bytes, ss.Hits, ss.Misses, ss.Writes, ss.Corrupt, ss.Evicted)
	}
}
