package main

import (
	"flag"
	"log/slog"
	"os"
)

// logger is the process-wide structured logger (log/slog), writing to
// stderr so command output (TSV, JSON) stays clean on stdout. It starts
// as a human-readable text logger; subcommands that take -log-format
// swap in the requested handler right after flag parsing, before any
// log line is emitted.
var logger = newLogger("text")

// newLogger builds a stderr slog.Logger for the given format ("text" or
// "json"; anything else falls back to text so a typo degrades to
// readable logs, never to silence).
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// logFormatFlag registers the -log-format flag on a subcommand's flag
// set; call applyLogFormat with the parsed value after fs.Parse.
func logFormatFlag(fs *flag.FlagSet) *string {
	return fs.String("log-format", "text", "structured log format: text or json")
}

// applyLogFormat installs the chosen log handler process-wide.
func applyLogFormat(format string) {
	logger = newLogger(format)
}
