// Command benchjson runs the repository's hot-path micro-benchmarks
// programmatically and emits a JSON snapshot (BENCH_<date>.json) so the
// performance trajectory can be tracked across PRs without parsing `go
// test -bench` text output.
//
// Usage:
//
//	benchjson [-o dir] [-benchtime 1s] [-load-duration 2s]
//	          [-baseline BENCH_x.json] [-gate name=pct,...]
//
// The snapshot covers the flow solver (scale, epsilon, repair-vs-rebuild,
// prebuild staleness-margin, and phase-parallel worker-scaling ablations),
// the incremental-evaluation path (SolverWarmStart/{ladder,expand}: the
// same delta-shaped points solved cold vs warm-started from the parent's
// stored witness; the ladder's ≥3× cold/warm speedup is enforced by the
// run itself, baseline or not), the scenario engine's solve cache (cold
// vs warm repeated-instance sweep), the persistent result store (cold process vs warm restart over
// a primed store directory), the remote store client (a Load round trip
// against a warm peer, clean vs through the chaos injector), the
// bisection-bandwidth estimator, two representative figure runners in
// quick mode (one grid-heavy, one decomposition-heavy), and the serve
// dataplane: ServeEvalWarm (one warm POST /v1/eval through the handler
// stack — the response-byte-cache hit path, allocs/op and all) plus
// ServeLoad/{warm,mixed}/{p50,p99} from the deterministic open-loop load
// generator (internal/loadgen) against an in-process daemon.
//
// With -baseline, the fresh snapshot is compared entry-by-entry against a
// committed earlier snapshot; -gate turns selected comparisons into hard
// failures, e.g. -gate "SolverScale/n=80=25" exits non-zero if that
// benchmark's ns/op — or, when the baseline recorded allocations, its
// allocs/op — regressed more than 25% — the CI perf gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/loadgen"
	"repro/internal/maxflow"
	"repro/internal/mcf"
	"repro/internal/remotestore"
	"repro/internal/rrg"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/traffic"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Seconds     float64 `json:"seconds"`
}

// Snapshot is the emitted file format.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []Entry `json:"entries"`
}

func main() {
	testing.Init() // register test.* flags so benchtime is settable
	out := flag.String("o", ".", "output directory for BENCH_<date>.json")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark target runtime")
	baseline := flag.String("baseline", "", "earlier BENCH_*.json to compare the fresh snapshot against")
	gate := flag.String("gate", "", "comma-separated name=maxRegressPct gates enforced against -baseline")
	loadDur := flag.Duration("load-duration", 2*time.Second, "ServeLoad open-loop measured window per mix")
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}

	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		e := Entry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Seconds:     r.T.Seconds(),
		}
		snap.Entries = append(snap.Entries, e)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	}

	for _, n := range []int{20, 40, 80} {
		n := n
		add(fmt.Sprintf("SolverScale/n=%d", n), func(b *testing.B) {
			benchSolve(b, n, 10, 5, 0.1)
		})
	}
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		eps := eps
		add(fmt.Sprintf("SolverEpsilon/eps=%v", eps), func(b *testing.B) {
			benchSolve(b, 40, 10, 5, eps)
		})
	}
	for _, mode := range []string{"repair", "rebuild"} {
		mode := mode
		add("SolverRepair/"+mode, func(b *testing.B) {
			benchRepair(b, 400, 6, mode == "repair")
		})
	}
	for _, m := range []float64{0, 0.5} {
		m := m
		add(fmt.Sprintf("SolverMargin/margin=%v", m), func(b *testing.B) {
			benchSolveMargin(b, 40, 10, 5, 0.2, m)
		})
	}
	for _, mode := range []string{"cold", "warm"} {
		mode := mode
		add("ScenarioCache/"+mode, func(b *testing.B) {
			benchScenarioCache(b, mode == "warm")
		})
	}
	for _, mode := range []string{"cold", "warm"} {
		mode := mode
		add("StoreColdWarm/"+mode, func(b *testing.B) {
			benchStoreColdWarm(b, mode == "warm")
		})
	}
	for _, mode := range []string{"clean", "faulty"} {
		mode := mode
		add("RemoteStore/"+mode, func(b *testing.B) {
			benchRemoteStore(b, mode == "faulty")
		})
	}
	// Incremental what-if evaluation: the same delta-shaped points solved
	// cold vs warm-started from the parent's witness. The ladder ratio is
	// the PR 9 acceptance number, enforced right here — a benchjson run
	// where warm starts stop paying fails, baseline or not.
	for _, c := range []struct {
		name string
		pts  []scenario.Point
		min  float64 // enforced cold/warm speedup (0: report only)
	}{
		{"ladder", warmLadderPoints(), 3},
		{"expand", warmExpandPoints(), 0},
	} {
		c := c
		add("SolverWarmStart/"+c.name+"/cold", func(b *testing.B) {
			benchWarmStart(b, c.pts, false)
		})
		coldNs := snap.Entries[len(snap.Entries)-1].NsPerOp
		add("SolverWarmStart/"+c.name+"/warm", func(b *testing.B) {
			benchWarmStart(b, c.pts, true)
		})
		warmNs := snap.Entries[len(snap.Entries)-1].NsPerOp
		ratio := float64(coldNs) / float64(warmNs)
		fmt.Fprintf(os.Stderr, "%-28s %12.2fx cold/warm\n", "SolverWarmStart/"+c.name, ratio)
		if c.min > 0 && ratio < c.min {
			fatal(fmt.Errorf("SolverWarmStart/%s: warm start only %.2fx faster than cold (acceptance floor %.0fx)",
				c.name, ratio, c.min))
		}
	}
	for _, w := range []int{1, 2, 4} {
		w := w
		add(fmt.Sprintf("SolverPhasePar/workers=%d", w), func(b *testing.B) {
			// Widen the process semaphore so the requested worker count can
			// actually fan out; results are byte-identical either way.
			runner.SetMaxInFlight(w)
			defer runner.SetMaxInFlight(0)
			benchSolveWorkers(b, 80, 10, 5, 0.1, w)
		})
	}
	add("BisectionBandwidth/n=200", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		g, err := rrg.Regular(rng, 200, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			maxflow.BisectionBandwidth(g, 4)
		}
	})
	for _, id := range []string{"2a", "9a"} {
		id := id
		add("Fig"+id+"/quick", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Registry[id](experiments.Options{Quick: true, Runs: 2, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	add("ServeEvalWarm", benchServeEvalWarm)
	for _, l := range []struct {
		mode string
		miss float64
	}{{"warm", 0}, {"mixed", 0.1}} {
		res := runServeLoad(l.miss, *loadDur)
		for _, p := range []struct {
			name string
			ns   int64
		}{{"p50", int64(res.P50)}, {"p99", int64(res.P99)}} {
			e := Entry{
				Name:       fmt.Sprintf("ServeLoad/%s/%s", l.mode, p.name),
				Iterations: res.Requests,
				NsPerOp:    p.ns,
				Seconds:    res.Elapsed.Seconds(),
			}
			snap.Entries = append(snap.Entries, e)
			fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10.1f rps\n", e.Name, e.NsPerOp, res.RPS)
		}
		if res.Errors > 0 || res.Statuses[http.StatusOK] != res.Requests {
			fatal(fmt.Errorf("ServeLoad/%s: %d errors, statuses %v", l.mode, res.Errors, res.Statuses))
		}
	}

	path := filepath.Join(*out, "BENCH_"+snap.Date+".json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(path)

	if *baseline != "" {
		if err := compare(*baseline, &snap, *gate); err != nil {
			fatal(err)
		}
	}
}

// compare prints per-entry deltas against a baseline snapshot and enforces
// the -gate regression limits.
func compare(baselinePath string, snap *Snapshot, gates string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseBy := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseBy[e.Name] = e
	}
	limits := map[string]float64{}
	if gates != "" {
		for _, g := range strings.Split(gates, ",") {
			g = strings.TrimSpace(g)
			// Benchmark names contain '=' (SolverScale/n=80), so the limit
			// is everything after the LAST '='.
			cut := strings.LastIndex(g, "=")
			if cut < 0 {
				return fmt.Errorf("bad -gate entry %q (want name=pct)", g)
			}
			name, pctStr := g[:cut], g[cut+1:]
			pct, err := strconv.ParseFloat(pctStr, 64)
			if err != nil {
				return fmt.Errorf("bad -gate percentage in %q: %w", g, err)
			}
			limits[name] = pct
		}
	}
	fmt.Fprintf(os.Stderr, "\nvs baseline %s (%s):\n", baselinePath, base.Date)
	var failures []string
	for _, e := range snap.Entries {
		b, ok := baseBy[e.Name]
		if !ok || b.NsPerOp == 0 {
			fmt.Fprintf(os.Stderr, "  %-28s %12d ns/op  (no baseline)\n", e.Name, e.NsPerOp)
			continue
		}
		delta := 100 * (float64(e.NsPerOp) - float64(b.NsPerOp)) / float64(b.NsPerOp)
		mark := ""
		if lim, gated := limits[e.Name]; gated {
			mark = fmt.Sprintf("  [gate %.0f%%]", lim)
			if delta > lim {
				mark += " FAIL"
				failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (limit %.0f%%): %d -> %d ns/op",
					e.Name, delta, lim, b.NsPerOp, e.NsPerOp))
			}
			// A gate also pins allocs/op (when the baseline recorded any):
			// the zero-alloc dataplane must not quietly grow garbage even if
			// wall-clock stays inside the limit.
			if b.AllocsPerOp > 0 {
				aDelta := 100 * (float64(e.AllocsPerOp) - float64(b.AllocsPerOp)) / float64(b.AllocsPerOp)
				if aDelta > lim {
					mark += " ALLOC-FAIL"
					failures = append(failures, fmt.Sprintf("%s allocs regressed %.1f%% (limit %.0f%%): %d -> %d allocs/op",
						e.Name, aDelta, lim, b.AllocsPerOp, e.AllocsPerOp))
				}
			}
		}
		fmt.Fprintf(os.Stderr, "  %-28s %12d ns/op  %+7.1f%%%s\n", e.Name, e.NsPerOp, delta, mark)
	}
	// A gate that matches nothing must fail loudly — otherwise renaming a
	// benchmark silently turns the CI gate vacuous.
	snapBy := make(map[string]bool, len(snap.Entries))
	for _, e := range snap.Entries {
		snapBy[e.Name] = true
	}
	for name := range limits {
		if b, ok := baseBy[name]; !ok || b.NsPerOp == 0 {
			failures = append(failures, fmt.Sprintf("gated benchmark %s missing from baseline", name))
		}
		if !snapBy[name] {
			failures = append(failures, fmt.Sprintf("gated benchmark %s missing from this run", name))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func benchSolve(b *testing.B, n, r, sps int, eps float64) {
	benchSolveWorkers(b, n, r, sps, eps, 0)
}

// benchSolveMargin mirrors BenchmarkSolverMargin: the high-ε double-build
// instance with the phase-start prebuild's staleness margin on or off.
func benchSolveMargin(b *testing.B, n, r, sps int, eps, margin float64) {
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, n, r)
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < n; u++ {
		g.SetServers(u, sps)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: eps, PrebuildMargin: margin}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScenarioCache mirrors BenchmarkScenarioCache: a repeated-instance
// degree sweep through the scenario engine, cold vs against a primed
// content-addressed cache.
func benchScenarioCache(b *testing.B, warm bool) {
	grid, err := scenario.ParseGrid("topo=rrg:n=40,sps=5 traffic=permutation eval=mcf sweep=deg:6..14:4 runs=2 eps=0.12 seed=1")
	if err != nil {
		b.Fatal(err)
	}
	if warm {
		e := &scenario.Engine{Parallel: 1, Cache: scenario.NewCache()}
		if _, _, err := grid.Run(e); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := grid.Run(e); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		e := &scenario.Engine{Parallel: 1}
		if _, _, err := grid.Run(e); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStoreColdWarm measures the persistent store's cross-process
// restart win on the ScenarioCache sweep: "cold" is a fresh process with
// an empty store (solve everything, write entries), "warm" is a fresh
// process — new Cache, new store handle — over a primed store directory
// (answer everything from disk). The warm/cold ratio is the PR 5
// acceptance number.
func benchStoreColdWarm(b *testing.B, warm bool) {
	grid, err := scenario.ParseGrid("topo=rrg:n=40,sps=5 traffic=permutation eval=mcf sweep=deg:6..14:4 runs=2 eps=0.12 seed=1")
	if err != nil {
		b.Fatal(err)
	}
	runGrid := func(dir string) {
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		cache := scenario.NewCache()
		cache.SetBackend(st)
		e := &scenario.Engine{Parallel: 1, Cache: cache}
		if _, _, err := grid.Run(e); err != nil {
			b.Fatal(err)
		}
	}
	if warm {
		dir, err := os.MkdirTemp("", "storebench")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		runGrid(dir) // prime the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runGrid(dir) // fresh cache + fresh handle: a restarted process
		}
		return
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "storebench")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		runGrid(dir)
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// benchRemoteStore mirrors BenchmarkRemoteStore: one remote Load round
// trip against a warm in-memory peer, over a healthy transport ("clean")
// or through the chaos injector at the CI smoke's rates ("faulty") — the
// faulty/clean ratio is what fault tolerance costs on the hit path.
func benchRemoteStore(b *testing.B, faulty bool) {
	var mu sync.Mutex
	data := map[string][]byte{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		addr := strings.TrimPrefix(r.URL.Path, "/v1/result/")
		switch r.Method {
		case http.MethodGet:
			mu.Lock()
			body, ok := data[addr]
			mu.Unlock()
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", remotestore.ContentType)
			w.Write(body)
		case http.MethodPut:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mu.Lock()
			data[addr] = body
			mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	}))
	defer hs.Close()
	opt := remotestore.Options{
		BaseURL: hs.URL,
		// Microsecond backoff: measure the machinery, not the waits.
		BackoffBase:     time.Microsecond,
		BackoffMax:      10 * time.Microsecond,
		BreakerCooldown: time.Millisecond,
	}
	if faulty {
		fcfg, err := faultinject.ParseSpec("seed=11,error=0.2,corrupt=0.05")
		if err != nil {
			b.Fatal(err)
		}
		opt.Transport = faultinject.NewTransport(nil, fcfg)
	}
	c := remotestore.New(opt)
	key := "bench-point"
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	if err := c.Save(key, vals); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Load(key)
	}
}

// warmLadderPoints builds the incremental-evaluation failure ladder: the
// PR 4 sweep instance (rrg n=40 deg=10 sps=5, permutation, mcf, eps=0.12,
// seed=1) degraded at frac=0.05..0.2. All rungs share one seed, hence one
// frac=0 parent (the repo's bench_test.go keeps the same points).
func warmLadderPoints() []scenario.Point {
	topoSpec, err := scenario.ParseTopology("rrg:n=40,sps=5")
	if err != nil {
		fatal(err)
	}
	tr, err := scenario.ParseTraffic("permutation")
	if err != nil {
		fatal(err)
	}
	var pts []scenario.Point
	for _, frac := range []float64{0.05, 0.1, 0.15, 0.2} {
		inner, err := scenario.ParseEvaluator("mcf")
		if err != nil {
			fatal(err)
		}
		pts = append(pts, scenario.Point{
			Topo: topoSpec, Traffic: tr,
			Eval: scenario.Failures{Frac: frac, Inner: inner},
			Seed: 1, Runs: 2, Epsilon: 0.12,
		})
	}
	return pts
}

// warmExpandPoints is the expansion-step variant: one growth step on the
// same instance, whose parent is the unexpanded base fabric.
func warmExpandPoints() []scenario.Point {
	topoSpec, err := scenario.ParseTopology("expand:n=40,deg=10,sps=5,steps=1")
	if err != nil {
		fatal(err)
	}
	tr, err := scenario.ParseTraffic("permutation")
	if err != nil {
		fatal(err)
	}
	ev, err := scenario.ParseEvaluator("mcf")
	if err != nil {
		fatal(err)
	}
	return []scenario.Point{{
		Topo: topoSpec, Traffic: tr, Eval: ev,
		Seed: 1, Runs: 2, Epsilon: 0.12,
	}}
}

// benchWarmStart mirrors the repo's BenchmarkSolverWarmStart: cold solves
// the points from scratch; warm primes the parents' witnesses once
// outside the timer, then each iteration injects ONLY the witnesses into
// a fresh cache — so a warm op is witness mapping + seeded solve +
// flowcheck certification, never a result-cache hit — and every run must
// actually have warm-started.
func benchWarmStart(b *testing.B, pts []scenario.Point, warm bool) {
	b.ReportAllocs()
	if !warm {
		for i := 0; i < b.N; i++ {
			eng := &scenario.Engine{Parallel: 1}
			if _, err := eng.MeasureRuns(pts); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	prime := scenario.NewCache()
	peng := &scenario.Engine{Parallel: 1, Cache: prime, WarmStart: true}
	wit := map[string][]float64{}
	runsTotal := 0
	for _, p := range pts {
		runsTotal += p.Runs
		pp, ok := scenario.ParentPoint(p)
		if !ok {
			b.Fatalf("point %s has no parent", p.Key())
		}
		if _, err := peng.MeasureRuns([]scenario.Point{pp}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < p.Runs; i++ {
			k := scenario.WitnessKey(pp.Key(), i)
			w, ok := prime.Get(k)
			if !ok {
				b.Fatalf("parent solve exported no witness under %s", k)
			}
			wit[k] = w
		}
	}
	b.ResetTimer()
	var last *scenario.Engine
	for i := 0; i < b.N; i++ {
		cache := scenario.NewCache()
		for k, v := range wit {
			cache.Put(k, v)
		}
		eng := &scenario.Engine{Parallel: 1, Cache: cache, WarmStart: true}
		if _, err := eng.MeasureRuns(pts); err != nil {
			b.Fatal(err)
		}
		last = eng
	}
	b.StopTimer()
	if ws := last.WarmStats(); ws.Starts != int64(runsTotal) {
		b.Fatalf("warm iteration did not warm-start every run: %+v (want %d starts)", ws, runsTotal)
	}
}

func benchSolveWorkers(b *testing.B, n, r, sps int, eps float64, workers int) {
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, n, r)
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < n; u++ {
		g.SetServers(u, sps)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: eps, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRepair mirrors the repository's BenchmarkSolverRepair: per
// iteration, one cross-traffic batch of arc length growths, then bring the
// shortest-path tree current by incremental repair or full rebuild.
func benchRepair(b *testing.B, n, r int, repair bool) {
	g, err := rrg.Regular(rand.New(rand.NewSource(1)), n, r)
	if err != nil {
		b.Fatal(err)
	}
	m := g.NumArcs()
	lens := make([]float64, m)
	rng := rand.New(rand.NewSource(2))
	for a := range lens {
		lens[a] = 1 + 1e-3*rng.Float64()
	}
	d := g.NewDijkstraScratch()
	d.Run(0, lens, nil)
	changed := make([]int32, 0, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changed = changed[:0]
		for k := 0; k < 12; k++ {
			a := int32(rng.Intn(m))
			lens[a] *= 1 + 1e-9
			changed = append(changed, a)
		}
		if repair {
			if !d.Repair(lens, changed) {
				b.Fatal("repair refused")
			}
		} else {
			d.Run(0, lens, nil)
		}
	}
}

// replayBody is a rearm-able request body: Seek(0) readies it for the
// next iteration without allocating a reader.
type replayBody struct{ *bytes.Reader }

func (replayBody) Close() error { return nil }

// nullRW discards the response body and reuses its header map, so the
// direct-handler benchmark charges the service's own work and nothing
// else.
type nullRW struct {
	h      http.Header
	status int
}

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullRW) WriteHeader(s int)           { w.status = s }
func (w *nullRW) reset() {
	w.status = 0
	for k := range w.h {
		delete(w.h, k)
	}
}

// serveGrid is the load benchmarks' unit of work: a single-point aspl
// grid whose cost is dominated by the serve path once warm.
func serveGrid(seed int) string {
	return fmt.Sprintf("topo=rrg:n=8,deg=3,sps=1 traffic=permutation eval=aspl runs=1 seed=%d", seed)
}

// benchServeEvalWarm mirrors internal/service's BenchmarkServeEvalWarm:
// one warm POST /v1/eval through the full handler stack against a null
// writer — the response-byte-cache hit path, whose allocs/op the CI gate
// pins.
func benchServeEvalWarm(b *testing.B) {
	cache := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	svc := service.New(service.Config{Engine: eng, Cache: cache, MaxJobs: 4})
	h := svc.Handler()
	payload, err := json.Marshal(struct {
		Grid string `json:"grid"`
	}{serveGrid(1)})
	if err != nil {
		b.Fatal(err)
	}
	body := &replayBody{bytes.NewReader(payload)}
	req := httptest.NewRequest(http.MethodPost, "/v1/eval", body)
	w := &nullRW{h: http.Header{}}
	h.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		b.Fatalf("prime request: status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Seek(0, 0)
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}

// runServeLoad drives the deterministic open-loop load generator against
// an in-process serve daemon: 16 zipf-popular warm keys, optionally mixed
// with fresh never-seen grids, measured over dur. The p50/p99 numbers
// land in the snapshot as ServeLoad/<mix>/<pct>.
func runServeLoad(missFrac float64, dur time.Duration) loadgen.Result {
	cache := scenario.NewCache()
	eng := &scenario.Engine{Cache: cache, SkipInfeasible: true}
	svc := service.New(service.Config{Engine: eng, Cache: cache, MaxJobs: 8})
	hs := httptest.NewServer(svc.Handler())
	defer hs.Close()
	universe := make([]string, 16)
	for i := range universe {
		universe[i] = serveGrid(i + 1)
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  hs.URL,
		Universe: universe,
		Rate:     400,
		Duration: dur,
		Conns:    8,
		Seed:     1,
		MissFrac: missFrac,
		MissGrid: func(i int) string { return serveGrid(1_000_000 + i) },
		Prime:    true,
	})
	if err != nil {
		fatal(err)
	}
	return res
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
