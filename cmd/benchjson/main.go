// Command benchjson runs the repository's hot-path micro-benchmarks
// programmatically and emits a JSON snapshot (BENCH_<date>.json) so the
// performance trajectory can be tracked across PRs without parsing `go
// test -bench` text output.
//
// Usage:
//
//	benchjson [-o dir] [-benchtime 1s]
//
// The snapshot covers the flow solver (scale and epsilon ablations), the
// bisection-bandwidth estimator, and two representative figure runners in
// quick mode (one grid-heavy, one decomposition-heavy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/maxflow"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/traffic"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Seconds     float64 `json:"seconds"`
}

// Snapshot is the emitted file format.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []Entry `json:"entries"`
}

func main() {
	testing.Init() // register test.* flags so benchtime is settable
	out := flag.String("o", ".", "output directory for BENCH_<date>.json")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark target runtime")
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}

	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		e := Entry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Seconds:     r.T.Seconds(),
		}
		snap.Entries = append(snap.Entries, e)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	}

	for _, n := range []int{20, 40, 80} {
		n := n
		add(fmt.Sprintf("SolverScale/n=%d", n), func(b *testing.B) {
			benchSolve(b, n, 10, 5, 0.1)
		})
	}
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		eps := eps
		add(fmt.Sprintf("SolverEpsilon/eps=%v", eps), func(b *testing.B) {
			benchSolve(b, 40, 10, 5, eps)
		})
	}
	add("BisectionBandwidth/n=200", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		g, err := rrg.Regular(rng, 200, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			maxflow.BisectionBandwidth(g, 4)
		}
	})
	for _, id := range []string{"2a", "9a"} {
		id := id
		add("Fig"+id+"/quick", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Registry[id](experiments.Options{Quick: true, Runs: 2, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	path := filepath.Join(*out, "BENCH_"+snap.Date+".json")
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(path)
}

func benchSolve(b *testing.B, n, r, sps int, eps float64) {
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, n, r)
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < n; u++ {
		g.SetServers(u, sps)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: eps}); err != nil {
			b.Fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
