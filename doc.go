// Package repro is a from-scratch Go reproduction of "High Throughput
// Data Center Topology Design" (Singla, Godfrey, Kolla — NSDI 2014).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory), the figure regenerators under internal/experiments, the
// command-line tools under cmd/, and runnable examples under examples/.
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation in reduced "quick" mode; use cmd/topobench for full-fidelity
// runs.
//
// # Scenario engine
//
// internal/scenario is the unified evaluation substrate: Topology,
// Traffic, and Evaluator interfaces with string-keyed registries wrapping
// the topo/rrg/hetero generators, the traffic patterns, and the
// throughput/bisection/packet/ASPL/cut metrics. A scenario is addressed
// by spec strings ("rrg:n=400,deg=10" × "permutation" × "mcf"), swept
// declaratively (scenario.Grid, `topobench -scenario "topo=... sweep=
// deg:4..16"`), executed on the internal/runner pool with the
// byte-identical serial/parallel guarantee, and memoized in a
// content-addressed solve cache keyed on (topology spec, traffic spec,
// evaluator spec, ε, seed, runs) — instances shared across figures,
// sweeps, and adaptive searches solve once per process. All 27 Fig*
// runners are thin declarative layers over this engine (their golden
// outputs are pinned byte-for-byte), and any registry combination the
// paper never evaluated — power-law RRGs under hotspot traffic, VL2
// bisection bandwidth — runs through the same machinery. See the
// internal/scenario package comment for the spec grammar, the cache key
// invariant, and how to register new kinds.
//
// # Persistent result store and evaluation service
//
// The solve cache's content addresses are stable across processes, so
// internal/store persists them: a disk-backed tier beneath
// scenario.Cache keyed on the hex SHA-256 of the point key, with a
// versioned checksummed binary codec, atomic temp-file-plus-rename
// publication, 256-way sharded directories, an open-time index, and
// LRU/byte-budget pruning (Prune). The durability clause of the
// cache-key invariant: a stored entry is exactly what a cold solve of
// its key computes, and anything that could violate that — truncation,
// bit rot, a foreign codec version (bump store.CodecVersion whenever
// result encoding changes) — decodes as a miss and is re-solved, never
// served. `topobench -cache-dir` tiers the shared cache onto a store for
// batch runs (printing cache + store statistics at exit); a restarted
// process then answers previously-solved grids ~2000× faster,
// byte-identically (StoreColdWarm in the bench snapshot, golden tests
// pinned with the store enabled).
//
// internal/service wraps the engine and tiered cache in an HTTP JSON
// API — `topobench serve`: POST /v1/eval evaluates a declarative grid
// line (identical concurrent requests deduplicated in flight, a bounded
// job queue answering 429 under overload), GET /v1/result/<key> returns
// one stored result by content address, /v1/scenarios lists the
// registries, and /healthz + /metrics expose liveness and
// cache/store/request counters. Responses are canonically marshaled: a
// warm replay — same process or a restart over the same cache dir — is
// byte-identical to the cold response, and `topobench -scenario -json`
// emits the same bytes from the command line. Long grids go through the
// async job API instead of holding a connection: POST /v1/jobs answers
// 202 with a poll URL, job records persist in the result store (TBRJ
// codec, same corruption-tolerance rule as results — a lost or corrupt
// record means "unknown job, resubmit", never a wedge), progress and
// the final canonical bytes are served from GET /v1/jobs/<id>[/result],
// and a restarted daemon recovers its jobs — re-dispatching unfinished
// ones and replaying finished ones byte-identically from the warm
// store. `topobench submit` is the submit/poll/fetch client.
//
// # Fault-tolerant distributed evaluation
//
// Replicas form a fleet: `topobench serve -peer <url>` consults another
// replica's result pool over HTTP via internal/remotestore, a
// scenario.Backend that ships the store's own TBRS bytes on the wire
// (CRC re-verified on receipt), retries retryable failures with
// exponential backoff and full jitter under per-attempt deadlines, and
// trips a circuit breaker on consecutive failures so a dead peer costs
// one cheap rejection per call. store.Tiered layers disk before the peer
// with write-back promotion, and `-claim-lease` adds crash-safe
// cross-replica singleflight: cold solves race for an atomically linked
// claim file on the shared store directory, losers poll for the winner's
// entry, and expired leases are reclaimed — a crashed winner delays its
// point by one lease TTL, never wedges it. The governing rule is the
// cache-key invariant's degradation ladder: a local solve returns
// byte-identical values, so every failure at every layer — timeout, 5xx,
// corrupt payload, open breaker, lost claim — degrades to "miss, solve
// locally", never to an error and never to wrong data.
// internal/faultinject proves it: deterministic seeded fault-injecting
// RoundTripper/Backend wrappers (latency, timeouts, 5xx, resets,
// truncation, bit flips) drive the chaos suites in internal/remotestore,
// internal/store, and internal/service, and `-fault-inject` wires the
// same injector into a live replica for the CI chaos smoke — two
// replicas under 20% transport errors answering byte-identically to a
// clean run. The service itself recovers panics, bounds evaluations with
// `-request-timeout` (cancellation propagates through the engine into
// mcf.Solve phase boundaries; determinism is untouched because a solve
// either completes identically or returns nothing), reports degraded
// health on /healthz while remote errors are recent, and exposes
// retry/breaker/claim counters on /metrics.
//
// # Incremental evaluation
//
// Delta-shaped scenarios need not solve cold. A failure-ladder rung
// (failures:frac=f) and an expansion step (expand:steps=k) each have a
// natural parent — the same point at frac=0, the same topology at
// steps=k−1 — and scenario.ParentPoint derives it canonically, run
// controls inherited. With warm starts enabled (Engine.WarmStart,
// `topobench -scenario -warm-start`, `serve -warm-start`) the engine
// materializes the parent through the ordinary read ladder
// (memory → disk store → peer replica — witnesses are ordinary
// content-addressed entries under scenario.WitnessKey, so a witness
// written by another process or another replica warm-starts this one
// bit-exactly), maps the parent's dual length witness onto the child's
// arcs (mcf.MapArcLens), and seeds the Garg–Könemann solve from it
// (mcf.Options.WarmLens). A warm-seeded solve stops at the full
// certification gap 3ε against its best dual bound — the exact class
// flowcheck certifies — instead of re-deriving the length function from
// scratch; on the benchmark ladder that is a 3–5× end-to-end speedup
// (SolverWarmStart/{ladder,expand} in the bench snapshot, the ladder's
// ≥3× floor enforced by cmd/benchjson on every run). The guarantee is
// not assumed but re-checked: EVERY warm-started result is re-certified
// by flowcheck before it is published, and a failed certification falls
// back to a cold solve (Engine.WarmStats counts attempts, certified
// starts, and fallbacks; /metrics exposes them as warm_*_total).
// Cold solves are untouched byte-for-byte — warm-starting is opt-in and
// can only move a value within the certified ε class. Store entries
// written for a warm-started child carry their parent's content address
// (TBRS codec v2 parent link, readable by any process), store.PinKey
// protects parents from Prune eviction while children still seed from
// them, and a negative-result cache absorbs repeated misses on
// GET /v1/result so what-if probing stays cheap even when the answer is
// "not solved yet".
//
// # Performance architecture
//
// Every figure of the evaluation bottoms out in mcf.Solve, the
// Garg–Könemann concurrent-flow approximation standing in for the paper's
// CPLEX LP. Two layers keep regeneration fast:
//
// Solver layer. graph.Graph exposes its adjacency as a lazily built CSR
// (compressed sparse row) view, so the BFS/Dijkstra inner loops walk flat
// arrays instead of per-node slices. graph.DijkstraScratch makes repeated
// shortest-path trees allocation-free: dist/via validity is tracked with
// epoch stamps (no O(n) clearing), the heap keeps its backing array, and
// runs stop early once every requested target is settled. mcf.Solve
// builds on this with per-source trees that persist until a requested
// path's total length has grown by ≥ (1+ε) since the tree was built (the
// slack the Garg–Könemann analysis tolerates), an incrementally maintained
// termination potential, and a primal-dual certificate — the phase's tree
// distances yield a valid dual bound λ* ≤ Σ lens·caps / Σ demand·dist —
// that stops the solve as soon as the gap closes instead of waiting for
// the worst-case potential rule. maxflow.BisectionBandwidth refines cuts
// with incremental Kernighan–Lin swap gains (O(1) per candidate pair)
// rather than recomputing the full cut capacity per pair.
//
// Phase-parallel tree builds. Tree construction is the parallel part of
// the solver: at each phase start, mcf.Solve finds every source whose
// tree the phase is about to refresh anyway (the same (1+ε) staleness
// test the routing loop applies) and refreshes them all concurrently
// against the frozen phase-start length function — one persistent scratch
// per source, worker count bounded by Options.Workers and the process-wide
// runner semaphore. Options.PrebuildMargin optionally tightens that
// phase-start test to (1 + (1−margin)·ε), pulling borderline-fresh trees
// into the parallel pass while their stale regions are still small enough
// to repair — the mitigation for the serial mid-phase double-build tax on
// tiny high-ε instances (SolverMargin in the bench snapshot). Routing then proceeds serially against those trees, so
// the solve's output is byte-identical regardless of worker count (the
// golden figures stay byte-for-byte across machines); only wall-clock
// changes. Each rebuild also picks its traversal adaptively: when the
// phase's length spread max/min is small — the early/mid-solve regime,
// where Garg–Könemann lengths are still near-uniform — a monotone
// bucket-queue Dijkstra (graph.DijkstraScratch.RunBucketed, bucket width
// from graph.LengthRange) replaces the heap's O(log n) sifts with O(1)
// bucket appends; when the spread is wide, or bucket runs keep paying
// window-overflow rebases (a deterministic kill switch mirroring the
// repair one), builds revert to the heap. The dual normalizer α is
// accumulated from the phase-end trees — still built under lengths ≤ the
// end-of-phase lengths, hence still a valid dual bound, but fresher than
// the per-piece accumulation it replaced, which tightens the primal-dual
// certificate and cuts phase counts ~20% on the benchmark workloads.
//
// Dynamic tree repair. Stale shortest-path trees need not be rebuilt:
// because Garg–Könemann lengths only grow, graph.DijkstraScratch.Repair
// (increase-only Ramalingam–Reps) re-relaxes exactly the subtrees hanging
// below grown tree arcs, seeded from the unaffected boundary, and matches
// a from-scratch Dijkstra bit-for-bit when shortest paths are unique.
// Repair is valid only for complete trees (no early exit) and wins only
// when the stale region is a small fraction of the tree — growth scattered
// by other sources' routing ("cross-traffic") qualifies; growth along the
// tree's own root paths does not, since the stale subtree then hangs off
// the root. mcf.Solve therefore applies it adaptively: sources whose trees
// go stale more than once per phase get full repairable builds, repairs
// bail beyond a budget of N/2 affected nodes, and a kill switch reverts
// the solve to early-exit rebuilds when repairs keep losing.
//
// Experiment layer. internal/runner provides the worker pool that the
// figure runners, core.Evaluation, and the packet-simulation sweeps map
// their grids onto. Every task seeds its RNG deterministically from
// (Options.Seed, point index) and results are reduced in grid order, so
// parallel output is byte-identical to serial output; topobench runs
// parallel by default (-parallel=false forces serial). Nested pools share
// one process-wide weighted semaphore, so total in-flight work stays
// bounded by runner.SetMaxInFlight (GOMAXPROCS by default) no matter how
// grids, runs, and simulations nest. cmd/benchjson snapshots the hot-path
// benchmarks to BENCH_<date>.json so perf is tracked across PRs, and in
// CI compares them to the committed baseline, failing on hot-path
// regressions.
//
// # Verifying results
//
// The solver's output is not trusted, it is certified. internal/flowcheck
// replays every claim from first principles, sharing none of the solver's
// machinery: flow conservation at every node, per-arc capacity after
// congestion scaling, per-commodity demand proportionality, and the
// primal-dual ε-optimality gap against a dual bound recomputed with an
// independent Dijkstra from the exported length witness (mcf.Result.
// DualLens). Solve with mcf.Options.RecordPaths to export the path
// decomposition the structural checks need, or pass -verify to
// cmd/flowsolve for the one-shot report. flowcheck.VerifyRouting applies
// the same discipline to the static ECMP/VLB baselines of
// internal/routing (per-node conservation, load sanity, bottleneck-ratio
// throughput). flowcheck.VerifyPacket certifies the packet simulator's
// measurement window from its event-level audit (packet.Audit): exact
// per-node packet conservation — injected + arrived = delivered +
// next-hop attempts, in integers — per-arc line-rate sanity, and
// goodput/delivered consistency; the scenario engine's packet evaluator
// runs it on every simulation. The property tests in
// internal/mcf certify randomized instances on every run, and the golden
// tests in internal/experiments pin representative figure outputs
// byte-for-byte (regenerate intentional drift with `go test
// ./internal/experiments -run TestGolden -update` and review the diff).
package repro
