// Package repro is a from-scratch Go reproduction of "High Throughput
// Data Center Topology Design" (Singla, Godfrey, Kolla — NSDI 2014).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory), the figure regenerators under internal/experiments, the
// command-line tools under cmd/, and runnable examples under examples/.
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation in reduced "quick" mode; use cmd/topobench for full-fidelity
// runs.
package repro
