// Package repro is a from-scratch Go reproduction of "High Throughput
// Data Center Topology Design" (Singla, Godfrey, Kolla — NSDI 2014).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory), the figure regenerators under internal/experiments, the
// command-line tools under cmd/, and runnable examples under examples/.
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation in reduced "quick" mode; use cmd/topobench for full-fidelity
// runs.
//
// # Performance architecture
//
// Every figure of the evaluation bottoms out in mcf.Solve, the
// Garg–Könemann concurrent-flow approximation standing in for the paper's
// CPLEX LP. Two layers keep regeneration fast:
//
// Solver layer. graph.Graph exposes its adjacency as a lazily built CSR
// (compressed sparse row) view, so the BFS/Dijkstra inner loops walk flat
// arrays instead of per-node slices. graph.DijkstraScratch makes repeated
// shortest-path trees allocation-free: dist/via validity is tracked with
// epoch stamps (no O(n) clearing), the heap keeps its backing array, and
// runs stop early once every requested target is settled. mcf.Solve
// builds on this with per-source trees that persist until a requested
// path's total length has grown by ≥ (1+ε) since the tree was built (the
// slack the Garg–Könemann analysis tolerates), an incrementally maintained
// termination potential, and a primal-dual certificate — the phase's tree
// distances yield a valid dual bound λ* ≤ Σ lens·caps / Σ demand·dist —
// that stops the solve as soon as the gap closes instead of waiting for
// the worst-case potential rule. maxflow.BisectionBandwidth refines cuts
// with incremental Kernighan–Lin swap gains (O(1) per candidate pair)
// rather than recomputing the full cut capacity per pair.
//
// Experiment layer. internal/runner provides the worker pool that the
// figure runners, core.Evaluation, and the packet-simulation sweeps map
// their grids onto. Every task seeds its RNG deterministically from
// (Options.Seed, point index) and results are reduced in grid order, so
// parallel output is byte-identical to serial output; topobench runs
// parallel by default (-parallel=false forces serial). cmd/benchjson
// snapshots the hot-path benchmarks to BENCH_<date>.json so perf is
// tracked across PRs.
package repro
